(** Builders for every table of the paper's evaluation, the ablations
    and the sweeps.  All output goes through {!Isched_util.Table} so the
    benchmark executable prints a uniform report. *)

module Table := Isched_util.Table
module Machine := Isched_ir.Machine
module Suite := Isched_perfect.Suite

(** {2 Table 1 — benchmark characteristics} *)

(** [options] (here and below) defaults to
    {!Pipeline.default_options}; pass [{ default_options with
    sync_elim = true }] to report on the elimination-pass output. *)
val table1 : ?options:Pipeline.options -> Suite.benchmark list -> Table.t

(** {2 Table 2 / Table 3 — parallel execution times and improvement} *)

type measurement = {
  benchmark : string;
  config : string;
  t_list : int;  (** T_a: total time over the corpus, list scheduling *)
  t_new : int;  (** T_b: total time, new scheduling *)
}

(** [measure ?options ?jobs benches configs] — the full experiment:
    every DOACROSS loop of every corpus, scheduled both ways on every
    machine configuration and timed by the simulator.  The
    (benchmark x configuration) cells are independent and fan across
    {!Isched_util.Pool} ([jobs] defaults to
    {!Isched_util.Pool.default_jobs}); results come back in the same
    order as a sequential run, so the tables do not depend on the job
    count. *)
val measure :
  ?options:Pipeline.options -> ?jobs:int -> Suite.benchmark list ->
  (string * Machine.t) list -> measurement list

val table2 : measurement list -> Table.t
val table3 : measurement list -> Table.t

(** [improvement ~t_list ~t_new] — percentage improvement (paper's
    Table 3 metric). *)
val improvement : t_list:int -> t_new:int -> float

(** [overall measurements] — (2-issue, 4-issue) aggregate improvement
    percentages (the paper quotes 83.37% and 85.1%). *)
val overall : measurement list -> float * float

(** {2 DOACROSS categories (Section 4.1's six types)} *)

val categories : Suite.benchmark list -> Table.t

(** {2 Streamed, scaled tables ([bench --scale N])} *)

(** [scaled_tables ?options ?jobs ?chunk_size ~scale profiles configs]
    — Tables 1, 2/3 measurements and the category table for a [scale]×
    generated corpus, computed without ever materializing it: the loop
    stream of every profile is cut into independent chunks
    ({!Isched_perfect.Suite.chunks}, [chunk_size] generated loops each),
    one (profile x chunk) cell per pool task, and each cell reduces its
    loops to a handful of integer sums before the next chunk is
    generated.  Sums are associative, so the returned tables are
    byte-identical for every job count and chunk size.  Returns
    [(table1, measurements, categories, sync_ops)] where [sync_ops] is
    the total Send/Wait instruction count of the generated programs —
    the quantity the sync-elimination ablation drives down. *)
val scaled_tables :
  ?options:Pipeline.options ->
  ?jobs:int ->
  ?chunk_size:int ->
  scale:int ->
  Isched_perfect.Profile.t list ->
  (string * Machine.t) list ->
  Table.t * measurement list * Table.t * int

(** {2 Ablations} *)

(** A1: value of ordering sync-path groups by damage [(n/d)|SP|]. *)
val ablation_order : Suite.benchmark list -> Table.t

(** A2: redundant-synchronization elimination stacked on both
    schedulers. *)
val ablation_elimination : Suite.benchmark list -> Table.t

(** A6: the post-codegen transitive-reduction pass
    ({!Isched_sync.Elim} via {!Pipeline.options}[.sync_elim]) over the
    corpus benchmarks plus the elimination kernels, on the 2/4-issue x
    #FU 1/2 grid.  Columns report the Send/Wait instruction count and
    the new scheduler's time with and without the pass. *)
val ablation_sync_elim : Suite.benchmark list -> Table.t

(** A3: statement migration stacked on both schedulers. *)
val ablation_migration : Suite.benchmark list -> Table.t

(** A4: machine sweep beyond the paper's four configurations. *)
val sweep : Suite.benchmark list -> Table.t

(** A5: three-way comparison against the marker-guided scheduler
    ({!Isched_core.Marker_sched}, the author's ISPAN'94 technique). *)
val ablation_markers : Suite.benchmark list -> Table.t

(** Unroll study: the LBD formula's terms under DOACROSS unrolling. *)
val unroll_study : unit -> Table.t

(** Limited processor pools with cyclic iteration assignment. *)
val processor_sweep : Suite.benchmark list -> Table.t

(** Register study: spill traffic ({!Isched_codegen.Spill}) and its
    timing cost as the register file shrinks. *)
val register_study : Suite.benchmark list -> Table.t

(** Architecture comparison: one software-pipelined processor
    ({!Isched_core.Modulo_sched}) against the paper's n-processor
    DOACROSS execution. *)
val architecture_comparison : Suite.benchmark list -> Table.t
