(** Schedule explainer: joins the {!Isched_core.Lbd_model} pair reports
    with the {!Isched_obs.Provenance} decision trace of one traced
    scheduling run, attributing each synchronization pair's positions
    [i] (send) and [j] (wait) — the variables of the paper's
    [(n/d)(i-j) + l] cost — to the causal chain of scheduling decisions
    that fixed them.  Backs the [ischedc explain] subcommand. *)

module Ast := Isched_frontend.Ast
module Machine := Isched_ir.Machine
module Schedule := Isched_core.Schedule
module Lbd_model := Isched_core.Lbd_model
module Provenance := Isched_obs.Provenance

(** One synchronization pair with its decision chains.  A chain starts at
    the pair instruction's own placement decision and follows each
    decision's binding predecessor ([data]/[mem]/[sync-*] arc or forced
    ordering) back to a root with no binding. *)
type pair_trace = {
  report : Lbd_model.pair_report;
  src_label : string;  (** source-statement label, e.g. ["S3"] *)
  snk_label : string;  (** sink-statement label, e.g. ["S1"] *)
  array : string;  (** array carrying the dependence *)
  send_chain : Provenance.decision list;  (** [Send] decision first *)
  wait_chain : Provenance.decision list;  (** [Wait] decision first *)
}

type t = {
  loop_name : string;
  scheduler : string;  (** attribution tag; notes a list fallback *)
  machine : Machine.t;
  schedule : Schedule.t;
  decisions : Provenance.decision list;  (** the attributed subset *)
  last_decision : Provenance.decision option array;  (** per body index *)
  pairs : pair_trace list;
  simulated : int;  (** {!Isched_sim.Timing} parallel finish time *)
  analytic : int;  (** {!Lbd_model.exact_time} *)
  paper : int;  (** {!Lbd_model.paper_time}, the [(n/d)(i-j)+l] figure *)
  fallback : bool;  (** the new scheduler returned its list baseline *)
}

(** [build ?options ?which loop machine] prepares, trace-schedules
    (via {!Pipeline.schedule_traced}) and joins.  [which] defaults to
    {!Pipeline.New_scheduling}.  [Error] on a DOALL loop (nothing to
    explain).  When the new scheduler fell back to its list baseline,
    decisions are attributed to the baseline run and [fallback] is set;
    decisions whose cycle was later moved by compaction are annotated in
    the renderings. *)
val build :
  ?options:Pipeline.options ->
  ?which:Pipeline.scheduler ->
  Ast.loop ->
  Machine.t ->
  (t, string) result

(** [pair_key p] — ["SRC:SNK"], the [--pair] selector syntax. *)
val pair_key : pair_trace -> string

(** [render_ascii ?pair t] — human report: header, Fig. 4-style rows,
    then per-pair [i]/[j]/[i-j]/contribution lines with both decision
    chains.  [pair] filters to the pairs whose {!pair_key} equals it. *)
val render_ascii : ?pair:string -> t -> string

(** [render_json ?pair t] — the same as one JSON document (schema in
    doc/observability.md), including the raw decision list. *)
val render_json : ?pair:string -> t -> string
