module Table = Isched_util.Table
module Pool = Isched_util.Pool
module Machine = Isched_ir.Machine
module Program = Isched_ir.Program
module Suite = Isched_perfect.Suite
module Ast = Isched_frontend.Ast

(* The expensive builders below fan their independent cells — one per
   (benchmark x config) or (benchmark x variant) — across the domain
   pool.  [Pool.map] keeps result order equal to input order, so every
   table is byte-identical whatever the job count. *)

(* --- Table 1 --- *)

let corpus_stats ?(options = Pipeline.default_options) (b : Suite.benchmark) =
  let loops = b.Suite.loops in
  let prepared = List.map (fun l -> (l, Pipeline.prepare ~options l)) loops in
  let source_lines = List.fold_left (fun acc l -> acc + Ast.source_lines l) 0 loops in
  let n_doall =
    List.length (List.filter (fun (_, p) -> match p with Pipeline.Doall _ -> true | _ -> false) prepared)
  in
  let progs =
    List.filter_map
      (fun (_, p) -> match p with Pipeline.Doacross { prog; _ } -> Some prog | _ -> None)
      prepared
  in
  let dlx = List.fold_left (fun acc p -> acc + Array.length p.Program.body) 0 progs in
  let lfd = List.fold_left (fun acc p -> acc + Program.n_lfd p) 0 progs in
  let lbd = List.fold_left (fun acc p -> acc + Program.n_lbd p) 0 progs in
  (source_lines, List.length loops, n_doall, dlx, lfd, lbd)

let table1_of_rows rows =
  let t =
    Table.create ~title:"Table 1 - Characteristics of the Perfect-surrogate corpora"
      ~columns:
        [
          ("Items \\ Benchmarks", Table.Left);
          ("lines parsed", Table.Right);
          ("total no. of loops", Table.Right);
          ("no. of Doall loops", Table.Right);
          ("lines of DLX code", Table.Right);
          ("total no. of LFD", Table.Right);
          ("total no. of LBD", Table.Right);
        ]
  in
  let totals = Array.make 6 0 in
  List.iter
    (fun (name, row) ->
      List.iteri (fun i v -> totals.(i) <- totals.(i) + v) row;
      Table.add_row t (name :: List.map Table.fmt_int row))
    rows;
  Table.add_sep t;
  Table.add_row t ("TOTAL" :: Array.to_list (Array.map Table.fmt_int totals));
  t

let table1 ?options benches =
  table1_of_rows
    (List.map
       (fun (b : Suite.benchmark) ->
         let l, nl, nd, dlx, lfd, lbd = corpus_stats ?options b in
         (b.Suite.profile.Isched_perfect.Profile.name, [ l; nl; nd; dlx; lfd; lbd ]))
       benches)

(* --- Tables 2 and 3 --- *)

type measurement = { benchmark : string; config : string; t_list : int; t_new : int }

let measure ?(options = Pipeline.default_options) ?jobs benches configs =
  let cells =
    List.concat_map (fun (b : Suite.benchmark) -> List.map (fun c -> (b, c)) configs) benches
  in
  let cell ((b : Suite.benchmark), (cname, m)) =
    (* [prepare] is memoized, so every cell of the same benchmark shares
       one front-half run regardless of which worker gets there first. *)
    let prepared =
      List.filter_map
        (fun l ->
          match Pipeline.prepare ~options l with
          | Pipeline.Doall _ -> None
          | Pipeline.Doacross _ as p -> Some p)
        b.Suite.loops
    in
    let total which =
      List.fold_left (fun acc p -> acc + Pipeline.loop_time ~options p m which) 0 prepared
    in
    {
      benchmark = b.Suite.profile.Isched_perfect.Profile.name;
      config = cname;
      t_list = total Pipeline.List_scheduling;
      t_new = total Pipeline.New_scheduling;
    }
  in
  Pool.map ?jobs cell cells

let benchmarks_of ms = List.sort_uniq compare (List.map (fun m -> m.benchmark) ms)
let configs_of ms =
  (* preserve first-seen order *)
  List.fold_left (fun acc m -> if List.mem m.config acc then acc else acc @ [ m.config ]) [] ms

let find ms b c = List.find (fun m -> m.benchmark = b && m.config = c) ms

let table2 ms =
  let configs = configs_of ms in
  let columns =
    ("Benchmarks", Table.Left)
    :: List.concat_map
         (fun c ->
           let tag = c in
           [ ("Ta " ^ tag, Table.Right); ("Tb " ^ tag, Table.Right) ])
         configs
  in
  let t = Table.create ~title:"Table 2 - Total parallel execution time (cycles, 100 iterations)" ~columns in
  let totals = Hashtbl.create 8 in
  let add_total key v = Hashtbl.replace totals key (v + Option.value ~default:0 (Hashtbl.find_opt totals key)) in
  List.iter
    (fun b ->
      let cells =
        List.concat_map
          (fun c ->
            let m = find ms b c in
            add_total (c, `L) m.t_list;
            add_total (c, `N) m.t_new;
            [ Table.fmt_int m.t_list; Table.fmt_int m.t_new ])
          configs
      in
      Table.add_row t (b :: cells))
    (benchmarks_of ms);
  Table.add_sep t;
  let total_cells =
    List.concat_map
      (fun c ->
        [
          Table.fmt_int (Option.value ~default:0 (Hashtbl.find_opt totals (c, `L)));
          Table.fmt_int (Option.value ~default:0 (Hashtbl.find_opt totals (c, `N)));
        ])
      configs
  in
  Table.add_row t ("Total" :: total_cells);
  t

let improvement ~t_list ~t_new =
  if t_list <= 0 then 0. else 100. *. float_of_int (t_list - t_new) /. float_of_int t_list

let table3 ms =
  let configs = configs_of ms in
  let columns = ("Benchmarks", Table.Left) :: List.map (fun c -> (c, Table.Right)) configs in
  let t = Table.create ~title:"Table 3 - Improved percentage of parallel execution time" ~columns in
  List.iter
    (fun b ->
      let cells =
        List.map
          (fun c ->
            let m = find ms b c in
            Table.fmt_pct (improvement ~t_list:m.t_list ~t_new:m.t_new))
          configs
      in
      Table.add_row t (b :: cells))
    (benchmarks_of ms);
  Table.add_sep t;
  let total_cells =
    List.map
      (fun c ->
        let rows = List.filter (fun m -> m.config = c) ms in
        let tl = List.fold_left (fun a m -> a + m.t_list) 0 rows in
        let tn = List.fold_left (fun a m -> a + m.t_new) 0 rows in
        Table.fmt_pct (improvement ~t_list:tl ~t_new:tn))
      configs
  in
  Table.add_row t ("Overall" :: total_cells);
  t

let overall ms =
  let agg p =
    let rows = List.filter (fun m -> p m.config) ms in
    let tl = List.fold_left (fun a m -> a + m.t_list) 0 rows in
    let tn = List.fold_left (fun a m -> a + m.t_new) 0 rows in
    improvement ~t_list:tl ~t_new:tn
  in
  let starts_with prefix s = String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix in
  (agg (starts_with "2-issue"), agg (starts_with "4-issue"))

(* --- categories --- *)

let categories_of_rows rows =
  let module Doall = Isched_transform.Doall in
  let cats = Doall.all_categories in
  let columns =
    ("Benchmarks", Table.Left)
    :: (List.map (fun c -> (Doall.category_name c, Table.Right)) cats @ [ ("doall", Table.Right) ])
  in
  let t = Table.create ~title:"DOACROSS loop categories (Chen & Yew's six types)" ~columns in
  List.iter (fun (name, cells) -> Table.add_row t (name :: List.map Table.fmt_int cells)) rows;
  t

let categories benches =
  let module Doall = Isched_transform.Doall in
  let cats = Doall.all_categories in
  categories_of_rows
    (List.map
       (fun (b : Suite.benchmark) ->
         let counts = Hashtbl.create 8 in
         let doall = ref 0 in
         List.iter
           (fun l ->
             let l' = (Isched_transform.Restructure.run l).Isched_transform.Restructure.loop in
             if Isched_deps.Dep.is_doall l' then incr doall
             else begin
               let c = Doall.categorize l in
               Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
             end)
           b.Suite.loops;
         let cells =
           List.map (fun c -> Option.value ~default:0 (Hashtbl.find_opt counts c)) cats @ [ !doall ]
         in
         (b.Suite.profile.Isched_perfect.Profile.name, cells))
       benches)

(* --- streamed, scaled tables --- *)

module Profile = Isched_perfect.Profile

(* One (profile x chunk) cell of a scaled run, fully aggregated: the
   loops themselves are dropped as soon as the summary ints exist, so
   memory stays bounded by the chunk size whatever the scale.  All
   fields are sums of per-loop ints — associative — so folding the
   summaries gives totals independent of chunking and job count. *)
type chunk_summary = {
  cs_profile : string;
  cs_stats : int array;  (* lines, loops, doall, dlx, lfd, lbd *)
  cs_meas : (string * int * int) list;  (* config -> (t_list, t_new) *)
  cs_cats : int list;  (* per-category counts @ [doall], categories order *)
  cs_sync_ops : int;  (* Send/Wait instructions over the DOACROSS programs *)
}

let count_sync_ops (p : Program.t) =
  Array.fold_left
    (fun acc i -> if Isched_ir.Instr.is_sync i then acc + 1 else acc)
    0 p.Program.body

let summarize_chunk ?(options = Pipeline.default_options) configs (c : Suite.chunk) =
  let module Doall = Isched_transform.Doall in
  let loops = Suite.chunk_loops c in
  (* [prepare_uncached]: a 1000x corpus must not accumulate in the memo. *)
  let prepared = List.map (fun l -> (l, Pipeline.prepare_uncached options l)) loops in
  let source_lines = List.fold_left (fun acc (l, _) -> acc + Ast.source_lines l) 0 prepared in
  let doacross =
    List.filter_map
      (fun (l, p) -> match p with Pipeline.Doacross _ -> Some (l, p) | Pipeline.Doall _ -> None)
      prepared
  in
  let n_doall = List.length prepared - List.length doacross in
  let progs =
    List.filter_map
      (fun (_, p) -> match p with Pipeline.Doacross { prog; _ } -> Some prog | _ -> None)
      doacross
  in
  let dlx = List.fold_left (fun acc p -> acc + Array.length p.Program.body) 0 progs in
  let lfd = List.fold_left (fun acc p -> acc + Program.n_lfd p) 0 progs in
  let lbd = List.fold_left (fun acc p -> acc + Program.n_lbd p) 0 progs in
  let cs_sync_ops = List.fold_left (fun acc p -> acc + count_sync_ops p) 0 progs in
  let cs_meas =
    List.map
      (fun (cname, m) ->
        let tl, tn =
          List.fold_left
            (fun (atl, atn) (_, p) ->
              let tl, tn = Pipeline.list_and_new_times ~options p m in
              (atl + tl, atn + tn))
            (0, 0) doacross
        in
        (cname, tl, tn))
      configs
  in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (l, p) ->
      (* Categorization reads the dependences of the ORIGINAL loop; when
         restructuring was the identity (the common case for loops that
         stay DOACROSS) those are exactly the [carried] the preparation
         already computed. *)
      let cat =
        match p with
        | Pipeline.Doacross { restructured; carried; _ }
          when restructured.Isched_transform.Restructure.loop == l ->
          Doall.categorize ~carried l
        | _ -> Doall.categorize l
      in
      Hashtbl.replace counts cat (1 + Option.value ~default:0 (Hashtbl.find_opt counts cat)))
    doacross;
  let cs_cats =
    List.map
      (fun cat -> Option.value ~default:0 (Hashtbl.find_opt counts cat))
      Doall.all_categories
    @ [ n_doall ]
  in
  {
    cs_profile = c.Suite.profile.Profile.name;
    cs_stats = [| source_lines; List.length loops; n_doall; dlx; lfd; lbd |];
    cs_meas;
    cs_cats;
    cs_sync_ops;
  }

let scaled_tables ?options ?jobs ?(chunk_size = 64) ~scale profiles configs =
  let cells = List.concat_map (fun p -> Suite.chunks ~chunk_size ~scale p) profiles in
  let summaries = Pool.map ?jobs (summarize_chunk ?options configs) cells in
  let by_profile (p : Profile.t) =
    List.filter (fun s -> s.cs_profile = p.Profile.name) summaries
  in
  let t1 =
    table1_of_rows
      (List.map
         (fun (p : Profile.t) ->
           let row = Array.make 6 0 in
           List.iter
             (fun s -> Array.iteri (fun i v -> row.(i) <- row.(i) + v) s.cs_stats)
             (by_profile p);
           (p.Profile.name, Array.to_list row))
         profiles)
  in
  let ms =
    List.concat_map
      (fun (p : Profile.t) ->
        let ss = by_profile p in
        List.map
          (fun (cname, _) ->
            let pick f =
              List.fold_left
                (fun acc s ->
                  List.fold_left
                    (fun acc (c, tl, tn) -> if c = cname then acc + f tl tn else acc)
                    acc s.cs_meas)
                0 ss
            in
            {
              benchmark = p.Profile.name;
              config = cname;
              t_list = pick (fun tl _ -> tl);
              t_new = pick (fun _ tn -> tn);
            })
          configs)
      profiles
  in
  let cats =
    categories_of_rows
      (List.map
         (fun (p : Profile.t) ->
           match by_profile p with
           | [] -> (p.Profile.name, [])
           | first :: _ as ss ->
             let n = List.length first.cs_cats in
             let row = Array.make n 0 in
             List.iter (fun s -> List.iteri (fun i v -> row.(i) <- row.(i) + v) s.cs_cats) ss;
             (p.Profile.name, Array.to_list row))
         profiles)
  in
  let sync_ops = List.fold_left (fun acc s -> acc + s.cs_sync_ops) 0 summaries in
  (t1, ms, cats, sync_ops)

(* --- ablations --- *)


let ablation_generic ~title ~variants benches =
  let columns =
    ("Benchmarks", Table.Left)
    :: List.concat_map
         (fun (vname, _) -> [ (vname ^ " T", Table.Right); (vname ^ " impr", Table.Right) ])
         variants
  in
  let t = Table.create ~title ~columns in
  (* One reference config: the paper's 4-issue #FU=1 (the config where
     scheduling matters most). *)
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let cells =
    List.concat_map (fun (b : Suite.benchmark) -> List.map (fun v -> (b, v)) variants) benches
  in
  let totals =
    Array.of_list
      (Pool.map
         (fun ((b : Suite.benchmark), (_, (options, which))) ->
           List.fold_left
             (fun acc l ->
               match Pipeline.prepare ~options l with
               | Pipeline.Doall _ -> acc
               | Pipeline.Doacross _ as p -> acc + Pipeline.loop_time ~options p machine which)
             0 b.Suite.loops)
         cells)
  in
  let nv = List.length variants in
  List.iteri
    (fun bi (b : Suite.benchmark) ->
      let base = ref None in
      let cells =
        List.concat
          (List.mapi
             (fun vi _ ->
               let total = totals.((bi * nv) + vi) in
               let impr =
                 match !base with
                 | None ->
                   base := Some total;
                   "-"
                 | Some b0 -> Table.fmt_pct (improvement ~t_list:b0 ~t_new:total)
               in
               [ Table.fmt_int total; impr ])
             variants)
      in
      Table.add_row t (b.Suite.profile.Isched_perfect.Profile.name :: cells))
    benches;
  t

(* Most corpus loops carry a single synchronization path, where the
   ordering rule cannot matter; A1 therefore uses dedicated kernels with
   several recurrences of different damage (n/d)*|SP| contending for the
   same function units. *)
let multi_path_kernels =
  [
    ( "2 recurrences",
      "DOACROSS I = 1, 100\n\
      \ S1: W[I] = B[I-4] * C[I] + D[I-1] * Q[I]\n\
      \ S2: B[I] = W[I] + D[I] * R[I+1]\n\
      \ S3: A[I] = A[I-1] + E[I]\n\
       ENDDO" );
    ( "3 recurrences",
      "DOACROSS I = 1, 100\n\
      \ S1: U[I] = U[I-5] * C[I] + D[I]\n\
      \ S2: V[I] = V[I-2] + E[I] * Q[I]\n\
      \ S3: A[I] = A[I-1] + E[I+2]\n\
       ENDDO" );
    ( "mixed distances",
      "DOACROSS I = 1, 100\n\
      \ S1: U[I] = U[I-3] * C[I] + D[I] * Q[I-1]\n\
      \ S2: A[I] = A[I-1] + E[I+2]\n\
      \ S3: V[I] = V[I-4] + E[I] * Q[I] * R[I]\n\
       ENDDO" );
  ]

let ablation_order _benches =
  let t =
    Table.create ~title:"Ablation A1 - sync-path damage ordering ((n/d)|SP|), 2-issue #FU=1"
      ~columns:
        [
          ("Kernel", Table.Left);
          ("paths", Table.Right);
          ("list T", Table.Right);
          ("new unordered T", Table.Right);
          ("new ordered T", Table.Right);
          ("ordering gain", Table.Right);
        ]
  in
  let machine = Machine.make ~issue:2 ~nfu:1 () in
  List.iter
    (fun (name, src) ->
      let l = Isched_frontend.Parser.parse_loop ~name src in
      let prog = Isched_codegen.Codegen.compile l in
      let g = Isched_dfg.Dfg.build prog in
      let time s = (Isched_sim.Timing.run s).Isched_sim.Timing.finish in
      let t_list = time (Isched_core.List_sched.run g machine) in
      let t_un =
        time
          (Isched_core.Sync_sched.run
             ~options:{ Isched_core.Sync_sched.order_paths = false; compact = true }
             g machine)
      in
      let t_ord = time (Isched_core.Sync_sched.run g machine) in
      Table.add_row t
        [
          name;
          Table.fmt_int (List.length (Isched_dfg.Dfg.sync_paths g));
          Table.fmt_int t_list;
          Table.fmt_int t_un;
          Table.fmt_int t_ord;
          Table.fmt_pct (improvement ~t_list:t_un ~t_new:t_ord);
        ])
    multi_path_kernels;
  t

(* Instruction-level elimination is deliberately conservative (a wait
   is dropped only when data-flow arcs prove every instruction it
   protects is still ordered); the corpus loops keep all their waits, so
   A2 measures dedicated kernels where coverage is provable: repeated
   accesses to one cell, whose flow wait dominates the anti and output
   waits. *)
let elimination_kernels =
  [
    ("A[5] accumulation", "DOACROSS I = 1, 100\n A[5] = A[5] + E[I]\nENDDO");
    ("guarded scalar sum", "DOACROSS I = 1, 100\n IF (E[I] > 0) S = S + Q[I] * C[I]\nENDDO");
    ( "two fixed cells",
      "DOACROSS I = 1, 100\n S1: A[3] = A[3] + E[I]\n S2: A[7] = A[7] * C[I]\nENDDO" );
  ]

let ablation_elimination _benches =
  let t =
    Table.create ~title:"Ablation A2 - redundant-synchronization elimination, 2-issue #FU=1"
      ~columns:
        [
          ("Kernel", Table.Left);
          ("waits", Table.Right);
          ("waits+elim", Table.Right);
          ("new T", Table.Right);
          ("new+elim T", Table.Right);
          ("gain", Table.Right);
        ]
  in
  let machine = Machine.make ~issue:2 ~nfu:1 () in
  List.iter
    (fun (name, src) ->
      let l = Isched_frontend.Parser.parse_loop ~name src in
      let time prog =
        let g = Isched_dfg.Dfg.build prog in
        (Isched_sim.Timing.run (Isched_core.Sync_sched.run g machine)).Isched_sim.Timing.finish
      in
      let full = Isched_codegen.Codegen.compile l in
      let reduced = Isched_codegen.Codegen.compile ~eliminate:true l in
      let t_full = time full and t_red = time reduced in
      Table.add_row t
        [
          name;
          Table.fmt_int (Array.length full.Program.waits);
          Table.fmt_int (Array.length reduced.Program.waits);
          Table.fmt_int t_full;
          Table.fmt_int t_red;
          Table.fmt_pct (improvement ~t_list:t_full ~t_new:t_red);
        ])
    elimination_kernels;
  t

(* A6 drives the POST-codegen transitive-reduction pass
   (Isched_sync.Elim via Pipeline's [sync_elim] option) — unlike A2's
   plan-level pre-pass it also trusts the sync-condition arcs of
   surviving pairs, so e.g. the guarded scalar sum (which A2 cannot
   touch) loses its anti and output waits.  Rows cover the corpus
   benchmarks plus the elimination kernels across the 2/4-issue x
   #FU 1/2 grid; "sync" counts Send/Wait instructions in the generated
   programs and T is the new scheduler's simulated parallel time.  The
   scale-1 corpus rows typically show no redundancy (the deltas live in
   the scaled corpus — see the BENCH records' sync_ops field); the
   kernels row proves the axis end to end. *)
let ablation_sync_elim benches =
  let kernels =
    List.map
      (fun (name, src) -> Isched_frontend.Parser.parse_loop ~name src)
      elimination_kernels
  in
  let rows =
    List.map
      (fun (b : Suite.benchmark) ->
        (b.Suite.profile.Isched_perfect.Profile.name, b.Suite.loops))
      benches
    @ [ ("elim kernels", kernels) ]
  in
  let configs =
    List.concat_map
      (fun issue ->
        List.map
          (fun nfu -> (Printf.sprintf "%d-issue/#FU=%d" issue nfu, Machine.make ~issue ~nfu ()))
          [ 1; 2 ])
      [ 2; 4 ]
  in
  let base = Pipeline.default_options in
  let elim = { base with Pipeline.sync_elim = true } in
  let cell ((_, loops), (_, m)) =
    let run options =
      List.fold_left
        (fun (sync, time) l ->
          match Pipeline.prepare ~options l with
          | Pipeline.Doall _ -> (sync, time)
          | Pipeline.Doacross { prog; _ } as p ->
            ( sync + count_sync_ops prog,
              time + Pipeline.loop_time ~options p m Pipeline.New_scheduling ))
        (0, 0) loops
    in
    (run base, run elim)
  in
  let cells = List.concat_map (fun r -> List.map (fun c -> (r, c)) configs) rows in
  let results = Array.of_list (Pool.map cell cells) in
  let t =
    Table.create
      ~title:"Ablation A6 - post-codegen redundant-sync elimination (transitive reduction)"
      ~columns:
        [
          ("Benchmarks", Table.Left);
          ("config", Table.Left);
          ("sync", Table.Right);
          ("sync+elim", Table.Right);
          ("new T", Table.Right);
          ("new+elim T", Table.Right);
          ("gain", Table.Right);
        ]
  in
  let nc = List.length configs in
  let tot = Array.make 4 0 in
  List.iteri
    (fun ri (rname, _) ->
      List.iteri
        (fun ci (cname, _) ->
          let (s0, t0), (s1, t1) = results.((ri * nc) + ci) in
          tot.(0) <- tot.(0) + s0;
          tot.(1) <- tot.(1) + s1;
          tot.(2) <- tot.(2) + t0;
          tot.(3) <- tot.(3) + t1;
          Table.add_row t
            [
              (if ci = 0 then rname else "");
              cname;
              Table.fmt_int s0;
              Table.fmt_int s1;
              Table.fmt_int t0;
              Table.fmt_int t1;
              Table.fmt_pct (improvement ~t_list:t0 ~t_new:t1);
            ])
        configs)
    rows;
  Table.add_sep t;
  Table.add_row t
    [
      "TOTAL"; ""; Table.fmt_int tot.(0); Table.fmt_int tot.(1); Table.fmt_int tot.(2);
      Table.fmt_int tot.(3); Table.fmt_pct (improvement ~t_list:tot.(2) ~t_new:tot.(3));
    ];
  t

let ablation_migration benches =
  let base = Pipeline.default_options in
  let mig = { base with Pipeline.migrate = true } in
  ablation_generic
    ~title:"Ablation A3 - statement-level synchronization migration, 4-issue #FU=1"
    ~variants:
      [
        ("list", (base, Pipeline.List_scheduling));
        ("list+migr", (mig, Pipeline.List_scheduling));
        ("new", (base, Pipeline.New_scheduling));
        ("new+migr", (mig, Pipeline.New_scheduling));
      ]
    benches

let sweep benches =
  let configs =
    List.concat_map
      (fun issue -> List.map (fun nfu -> (Printf.sprintf "%d-issue/#FU=%d" issue nfu, Machine.make ~issue ~nfu ())) [ 1; 2; 4 ])
      [ 1; 2; 4; 8 ]
  in
  let ms = measure benches configs in
  let t =
    Table.create ~title:"Sweep A4 - improvement over issue widths 1-8 and 1-4 function units"
      ~columns:
        (("Config", Table.Left)
        :: (List.map (fun b -> (b, Table.Right)) (benchmarks_of ms) @ [ ("Overall", Table.Right) ]))
  in
  List.iter
    (fun (cname, _) ->
      let row =
        List.map
          (fun b ->
            let m = find ms b cname in
            Table.fmt_pct (improvement ~t_list:m.t_list ~t_new:m.t_new))
          (benchmarks_of ms)
      in
      let all_rows = List.filter (fun m -> m.config = cname) ms in
      let tl = List.fold_left (fun a m -> a + m.t_list) 0 all_rows in
      let tn = List.fold_left (fun a m -> a + m.t_new) 0 all_rows in
      Table.add_row t ((cname :: row) @ [ Table.fmt_pct (improvement ~t_list:tl ~t_new:tn) ]))
    configs;
  t


(* --- A5: three-way scheduler comparison --- *)

let ablation_markers benches =
  let t =
    Table.create
      ~title:"Ablation A5 - list vs marker-guided (ISPAN'94) vs new scheduling, 4-issue #FU=1"
      ~columns:
        [
          ("Benchmarks", Table.Left);
          ("list T", Table.Right);
          ("marker T", Table.Right);
          ("marker impr", Table.Right);
          ("new T", Table.Right);
          ("new impr", Table.Right);
        ]
  in
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let rows =
    Pool.map
      (fun (b : Suite.benchmark) ->
        List.fold_left
          (fun (tl, tm, tn) l ->
            match Pipeline.prepare l with
            | Pipeline.Doall _ -> (tl, tm, tn)
            | Pipeline.Doacross { graph; _ } ->
              let time s = (Isched_sim.Timing.run s).Isched_sim.Timing.finish in
              ( tl + time (Isched_core.List_sched.run graph machine),
                tm + time (Isched_core.Marker_sched.run graph machine),
                tn + time (Isched_core.Sync_sched.run graph machine) ))
          (0, 0, 0) b.Suite.loops)
      benches
    |> Array.of_list
  in
  List.iteri
    (fun bi (b : Suite.benchmark) ->
      let tl, tm, tn = rows.(bi) in
      Table.add_row t
        [
          b.Suite.profile.Isched_perfect.Profile.name;
          Table.fmt_int tl;
          Table.fmt_int tm;
          Table.fmt_pct (improvement ~t_list:tl ~t_new:tm);
          Table.fmt_int tn;
          Table.fmt_pct (improvement ~t_list:tl ~t_new:tn);
        ])
    benches;
  t

(* --- unroll study --- *)

let unroll_kernels =
  [
    ( "consumer+recurrence",
      "DOACROSS I = 1, 100\n S1: O[I] = A[I-1] * C[I]\n S2: A[I] = A[I-1] + E[I]\nENDDO" );
    ("tight recurrence", "DOACROSS I = 1, 100\n A[I] = A[I-1] * C[I] + E[I]\nENDDO");
    ("distance 2", "DOACROSS I = 1, 100\n A[I] = A[I-2] + E[I] * C[I]\nENDDO");
  ]

let unroll_study () =
  let factors = [ 1; 2; 4 ] in
  let t =
    Table.create ~title:"Unroll study - new scheduling, 4-issue #FU=2, factors 1/2/4"
      ~columns:
        (("Kernel", Table.Left)
        :: List.concat_map
             (fun u ->
               [ (Printf.sprintf "u=%d T" u, Table.Right); (Printf.sprintf "u=%d l" u, Table.Right) ])
             factors)
  in
  let machine = Machine.make ~issue:4 ~nfu:2 () in
  List.iter
    (fun (name, src) ->
      let l = Isched_frontend.Parser.parse_loop ~name src in
      let cells =
        List.concat_map
          (fun u ->
            let lu = Isched_transform.Unroll.run l ~factor:u in
            let prog = Isched_codegen.Codegen.compile lu in
            let g = Isched_dfg.Dfg.build prog in
            let s = Isched_core.Sync_sched.run g machine in
            [
              Table.fmt_int (Isched_sim.Timing.run s).Isched_sim.Timing.finish;
              Table.fmt_int s.Isched_core.Schedule.length;
            ])
          factors
      in
      Table.add_row t (name :: cells))
    unroll_kernels;
  t

(* --- processor sweep --- *)

let processor_sweep benches =
  let procs = [ 4; 8; 16; 32; 100 ] in
  let t =
    Table.create
      ~title:"Processor sweep - total time under new scheduling, 4-issue #FU=1, cyclic assignment"
      ~columns:
        (("Benchmarks", Table.Left)
        :: List.map (fun p -> (Printf.sprintf "P=%d" p, Table.Right)) procs)
  in
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let rows =
    Pool.map
      (fun (b : Suite.benchmark) ->
        let schedules =
          List.filter_map
            (fun l ->
              match Pipeline.prepare l with
              | Pipeline.Doall _ -> None
              | Pipeline.Doacross { graph; _ } -> Some (Isched_core.Sync_sched.run graph machine))
            b.Suite.loops
        in
        List.map
          (fun np ->
            Table.fmt_int
              (List.fold_left
                 (fun acc s ->
                   acc + (Isched_sim.Timing.run ~n_procs:np s).Isched_sim.Timing.finish)
                 0 schedules))
          procs)
      benches
    |> Array.of_list
  in
  List.iteri
    (fun bi (b : Suite.benchmark) ->
      Table.add_row t (b.Suite.profile.Isched_perfect.Profile.name :: rows.(bi)))
    benches;
  t

(* --- register study --- *)

let register_study benches =
  let ks = [ 6; 8; 12; 16 ] in
  let t =
    Table.create
      ~title:"Register study - spill traffic and time vs register-file size, new scheduling, 4-issue #FU=1"
      ~columns:
        (("Benchmarks", Table.Left)
        :: (List.concat_map
              (fun k ->
                [
                  (Printf.sprintf "k=%d spills" k, Table.Right);
                  (Printf.sprintf "k=%d T" k, Table.Right);
                ])
              ks
           @ [ ("unlimited T", Table.Right) ]))
  in
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let rows =
    Pool.map
      (fun (b : Suite.benchmark) ->
        let progs =
          List.filter_map
            (fun l ->
              match Pipeline.prepare l with
              | Pipeline.Doall _ -> None
              | Pipeline.Doacross { prog; _ } -> Some prog)
            b.Suite.loops
        in
        let time prog =
          let g = Isched_dfg.Dfg.build prog in
          (Isched_sim.Timing.run (Isched_core.Sync_sched.run g machine)).Isched_sim.Timing.finish
        in
        let cells =
          List.concat_map
            (fun k ->
              let spill_ops = ref 0 and total = ref 0 in
              List.iter
                (fun p ->
                  let r = Isched_codegen.Spill.insert p ~k in
                  spill_ops := !spill_ops + r.Isched_codegen.Spill.n_spill_ops;
                  total := !total + time r.Isched_codegen.Spill.prog)
                progs;
              [ Table.fmt_int !spill_ops; Table.fmt_int !total ])
            ks
        in
        let unlimited = List.fold_left (fun acc p -> acc + time p) 0 progs in
        cells @ [ Table.fmt_int unlimited ])
      benches
    |> Array.of_list
  in
  List.iteri
    (fun bi (b : Suite.benchmark) ->
      Table.add_row t (b.Suite.profile.Isched_perfect.Profile.name :: rows.(bi)))
    benches;
  t

(* --- architecture comparison: software pipelining vs DOACROSS --- *)

let architecture_comparison benches =
  let t =
    Table.create
      ~title:
        "Architecture comparison - 1 CPU (serial / modulo-scheduled) vs n CPUs (DOACROSS, new scheduling), 4-issue #FU=1"
      ~columns:
        [
          ("Benchmarks", Table.Left);
          ("serial 1-cpu", Table.Right);
          ("modulo 1-cpu", Table.Right);
          ("doacross n-cpu", Table.Right);
          ("modulo speedup", Table.Right);
          ("doacross speedup", Table.Right);
        ]
  in
  let machine = Machine.make ~issue:4 ~nfu:1 () in
  let rows =
    Pool.map
      (fun (b : Suite.benchmark) ->
        let serial = ref 0 and modulo = ref 0 and doacross = ref 0 in
        List.iter
          (fun l ->
            match Pipeline.prepare l with
            | Pipeline.Doall _ -> ()
            | Pipeline.Doacross { prog; graph; _ } ->
              (* serial: iterations back to back, sync ops excluded like
                 in the modulo schedule *)
              let real_ops =
                Array.fold_left
                  (fun acc ins -> if Isched_ir.Instr.is_sync ins then acc else acc + 1)
                  0 prog.Program.body
              in
              serial := !serial + (prog.Program.n_iters * real_ops);
              let ms = Isched_core.Modulo_sched.run graph machine in
              modulo := !modulo + Isched_core.Modulo_sched.total_time ms;
              doacross :=
                !doacross
                + (Isched_sim.Timing.run (Isched_core.Sync_sched.run graph machine))
                    .Isched_sim.Timing.finish)
          b.Suite.loops;
        (!serial, !modulo, !doacross))
      benches
    |> Array.of_list
  in
  List.iteri
    (fun bi (b : Suite.benchmark) ->
      let serial, modulo, doacross = rows.(bi) in
      Table.add_row t
        [
          b.Suite.profile.Isched_perfect.Profile.name;
          Table.fmt_int serial;
          Table.fmt_int modulo;
          Table.fmt_int doacross;
          Table.fmt_float ~decimals:1 (float_of_int serial /. float_of_int (max 1 modulo));
          Table.fmt_float ~decimals:1 (float_of_int serial /. float_of_int (max 1 doacross));
        ])
    benches;
  t
