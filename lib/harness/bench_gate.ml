module Json = Isched_obs.Json

type run = {
  git_rev : string;
  unix_time : float;
  jobs : int;
  smoke : bool;
  scale : int;
  stages : string;
  wall_clock_seconds : float;
  stage_seconds : (string * float) list;
  table_totals : (string * (int * int)) list;  (* config -> (t_list, t_new) *)
}

type stat = { mean : float; stddev : float; samples : int }

type regression = { metric : string; baseline : stat; candidate : float; ratio : float }

type comparison = {
  candidate : run;
  baseline_runs : int;
  stage_stats : (string * stat) list;
  regressions : regression list;
}

let stats_of = function
  | [] -> { mean = 0.; stddev = 0.; samples = 0 }
  | xs ->
    let n = float_of_int (List.length xs) in
    let mean = List.fold_left ( +. ) 0. xs /. n in
    let var = List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. n in
    { mean; stddev = sqrt var; samples = List.length xs }

let run_of_json v =
  let open Json in
  let num k = Option.bind (member k v) to_float in
  let str k = Option.bind (member k v) to_str in
  let bool_ k = Option.bind (member k v) to_bool in
  match (num "wall_clock_seconds", num "jobs") with
  | Some wall, Some jobs ->
    let pairs k =
      match Option.bind (member k v) to_obj with None -> [] | Some kvs -> kvs
    in
    let stage_seconds =
      List.filter_map
        (fun (k, x) -> Option.map (fun f -> (k, f)) (to_float x))
        (pairs "stage_seconds")
    in
    let table_totals =
      List.filter_map
        (fun (k, x) ->
          match (Option.bind (member "t_list" x) to_float, Option.bind (member "t_new" x) to_float)
          with
          | Some tl, Some tn -> Some ((k, (int_of_float tl, int_of_float tn)) : string * (int * int))
          | _ -> None)
        (pairs "table_totals")
    in
    Some
      {
        git_rev = Option.value ~default:"unknown" (str "git_rev");
        unix_time = Option.value ~default:0. (num "unix_time");
        jobs = int_of_float jobs;
        smoke = Option.value ~default:false (bool_ "smoke");
        (* Records written before --scale existed all ran the unscaled
           corpus. *)
        scale = (match num "scale" with Some s -> int_of_float s | None -> 1);
        stages = Option.value ~default:"all" (str "stages");
        wall_clock_seconds = wall;
        stage_seconds;
        table_totals;
      }
  | _ -> None

let parse_history s =
  match Json.parse s with
  | Error e -> Error e
  | Ok v -> (
    match Option.bind (Json.member "runs" v) Json.to_list with
    | None -> Error "no \"runs\" array"
    | Some runs -> Ok (List.filter_map run_of_json runs))

let compare_latest ?(threshold = 0.20) runs =
  match List.rev runs with
  | [] -> Error "history is empty"
  | candidate :: older ->
    let baseline =
      List.filter
        (fun r ->
          r.jobs = candidate.jobs && r.smoke = candidate.smoke
          && r.scale = candidate.scale && r.stages = candidate.stages)
        older
    in
    let stat_of f rs = stats_of (List.map f rs) in
    let check ?(floor = 0.) metric baseline_stat value regressions =
      (* Only flag against a meaningful baseline: a zero mean (metric
         absent in every prior run) can not regress.  [floor] is the
         minimum absolute slowdown worth flagging — per-stage times for
         millisecond stages would otherwise trip the ratio on timer
         noise alone. *)
      if baseline_stat.samples = 0 || baseline_stat.mean <= 0. then regressions
      else
        let ratio = value /. baseline_stat.mean in
        if ratio > 1. +. threshold && value -. baseline_stat.mean > floor then
          { metric; baseline = baseline_stat; candidate = value; ratio } :: regressions
        else regressions
    in
    let regressions =
      check "wall_clock_seconds"
        (stat_of (fun r -> r.wall_clock_seconds) baseline)
        candidate.wall_clock_seconds []
    in
    let regressions =
      List.fold_left
        (fun acc (config, (tl, tn)) ->
          let pick f r = Option.map f (List.assoc_opt config r.table_totals) in
          let base_list = List.filter_map (pick (fun (l, _) -> float_of_int l)) baseline in
          let base_new = List.filter_map (pick (fun (_, n) -> float_of_int n)) baseline in
          check
            (Printf.sprintf "table_totals.%s.t_list" config)
            (stats_of base_list) (float_of_int tl)
            (check
               (Printf.sprintf "table_totals.%s.t_new" config)
               (stats_of base_new) (float_of_int tn) acc))
        regressions candidate.table_totals
    in
    let stage_stats =
      List.map
        (fun (name, _) ->
          ( name,
            stats_of
              (List.filter_map (fun r -> List.assoc_opt name r.stage_seconds) baseline) ))
        candidate.stage_seconds
    in
    (* Gate each stage's seconds too: a regression confined to the
       tables stage is invisible in the wall clock of a full run, where
       the serial micro stage dominates. *)
    let regressions =
      List.fold_left
        (fun acc (name, secs) ->
          match List.assoc_opt name stage_stats with
          | Some st -> check ~floor:0.05 (Printf.sprintf "stage_seconds.%s" name) st secs acc
          | None -> acc)
        regressions candidate.stage_seconds
    in
    Ok
      {
        candidate;
        baseline_runs = List.length baseline;
        stage_stats;
        regressions = List.rev regressions;
      }

let render_comparison c =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "perf comparison: candidate %s (jobs=%d, smoke=%b, scale=%d, stages=%s) vs %d prior run(s)\n"
    (if String.length c.candidate.git_rev > 12 then String.sub c.candidate.git_rev 0 12
     else c.candidate.git_rev)
    c.candidate.jobs c.candidate.smoke c.candidate.scale c.candidate.stages c.baseline_runs;
  if c.baseline_runs = 0 then add "no matching baseline runs: nothing to compare against — OK\n"
  else begin
    add "  wall clock: %.3f s\n" c.candidate.wall_clock_seconds;
    List.iter
      (fun (name, st) ->
        let now = List.assoc_opt name c.candidate.stage_seconds in
        add "  stage %-24s now %s, baseline mean %.3f s (stddev %.3f, n=%d)\n" name
          (match now with Some s -> Printf.sprintf "%.3f s" s | None -> "-")
          st.mean st.stddev st.samples)
      c.stage_stats;
    match c.regressions with
    | [] -> add "no regression above threshold — OK\n"
    | rs ->
      List.iter
        (fun r ->
          add "REGRESSION %s: %.3f vs baseline mean %.3f (x%.2f, stddev %.3f, n=%d)\n" r.metric
            r.candidate r.baseline.mean r.ratio r.baseline.stddev r.baseline.samples)
        rs
  end;
  Buffer.contents buf

let ok c = c.regressions = []

(* --- history rotation --- *)

let rotate_history ?(keep = 200) contents =
  (* Rotation happens at the generic JSON level so fields this module
     does not model (the counters snapshots) survive verbatim. *)
  match Json.parse contents with
  | Error _ -> None
  | Ok v -> (
    match Option.bind (Json.member "runs" v) Json.to_list with
    | None -> None
    | Some runs when List.length runs <= keep -> None
    | Some runs ->
      let dropped = List.length runs - keep in
      let kept = List.filteri (fun i _ -> i >= dropped) runs in
      let v' =
        match v with
        | Json.Obj kvs ->
          Json.Obj (List.map (fun (k, x) -> if k = "runs" then (k, Json.Arr kept) else (k, x)) kvs)
        | _ -> Json.Obj [ ("runs", Json.Arr kept) ]
      in
      Some (Json.to_string v' ^ "\n"))
