(** Semantic-equivalence checking across the whole pipeline.

    Two independent obligations are covered:

    - {!check_restructure}: the Parafrase-surrogate transformations
      preserve the source semantics.  The restructured loop's final
      memory must match the original's after reconciling each recorded
      {!Isched_transform.Restructure.action} (reduction partials are
      combined in iteration order, expanded scalars take their last
      element, substituted induction variables their closed form).

    - {!check_schedule}: a scheduled parallel execution reproduces the
      sequential three-address reference — same final memory, no stale
      reads, no write races. *)

module Ast := Isched_frontend.Ast

(** [check_restructure l r] — [Ok ()] when the transformed loop is
    observably equivalent to [l]; [Error msgs] lists every deviation. *)
val check_restructure :
  Ast.loop -> Isched_transform.Restructure.result -> (unit, string list) result

(** [check_schedule prog sched] — compares the parallel value simulation
    of [sched] against the sequential interpretation of [prog]. *)
val check_schedule :
  Isched_ir.Program.t -> Isched_core.Schedule.t -> (unit, string list) result
