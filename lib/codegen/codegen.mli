(** DLX-like three-address code generation (the paper's Fig. 2 shape).

    One loop iteration compiles to straight-line code.  Per statement the
    emission order is: the [Wait_Signal]s of dependences sinking at the
    statement, the guard condition (if any), the left-hand-side address,
    the right-hand side in post-order (operand loads are emitted at their
    use — the delayed-load style the paper points out), the (possibly
    if-converted) store, and finally any [Send_Signal] immediately after
    its dependence-source access.

    Address arithmetic is value-numbered across the whole body, so a
    subscript address such as [4*I] is computed once and reused by later
    statements (Fig. 2 reuses [t1] in instructions 10, 22 and 26).
    Loads are never value-numbered, except loads from arrays the body
    provably never stores to, and scalar loads of read-only scalars.

    Guarded statements are if-converted: the old value of the target cell
    is loaded, the new value selected under the guard predicate, and the
    result stored unconditionally. *)

module Ast := Isched_frontend.Ast

(** [run ?n_iters l plan] compiles the loop under the given
    synchronization plan into a {!Isched_ir.Program.t}.  [n_iters]
    overrides the iteration count recorded in the program (defaults to
    the loop's own range).  The result passes
    {!Isched_ir.Program.validate}.

    Raises [Invalid_argument] if the loop fails {!Sema.check} or uses
    subscripts nested deeper than one indirection. *)
val run : ?n_iters:int -> Ast.loop -> Isched_sync.Plan.t -> Isched_ir.Program.t

(** [compile ?eliminate ?migrate ?carried ?n_iters l] is the full front
    end in one call: optional statement migration, sync-plan
    construction, then {!run}.  Restructuring is {e not} applied
    (callers choose via {!Isched_transform.Restructure}).

    [eliminate] enables instruction-level redundant-synchronization
    elimination ({!Isched_dfg.Reduce}): the loop is compiled with the
    full plan, provably covered waits are identified on the data-flow
    graph, and the loop is recompiled with the reduced plan.

    [carried], when given, must equal [Dep.carried_deps l]; callers
    that already ran the dependence analysis (e.g. to decide DOALL vs
    DOACROSS) pass it along so the plan is built without re-analyzing.
    Ignored under [migrate] (reordering renumbers the accesses). *)
val compile :
  ?eliminate:bool ->
  ?migrate:bool ->
  ?carried:Isched_deps.Dep.t list ->
  ?n_iters:int ->
  Ast.loop ->
  Isched_ir.Program.t
