module Program = Isched_ir.Program
module Instr = Isched_ir.Instr

let original_order (p : Program.t) = Array.init (Array.length p.Program.body) (fun i -> i)

let live_ranges (p : Program.t) ~order =
  let n = Array.length p.Program.body in
  if Array.length order <> n then invalid_arg "Regalloc.live_ranges: order length mismatch";
  let ranges = Array.make p.Program.n_regs (-1, -1) in
  Array.iteri
    (fun pos i ->
      let ins = p.Program.body.(i) in
      (match Instr.def ins with
      | Some r ->
        let _, stop = ranges.(r) in
        ranges.(r) <- (pos, max pos stop)
      | None -> ());
      List.iter
        (fun r ->
          let start, stop = ranges.(r) in
          ranges.(r) <- (start, max stop pos))
        (Instr.uses ins))
    order;
  (* A register never defined (cannot happen for validated programs) or
     never used keeps stop = start. *)
  Array.map (fun (a, b) -> (a, max a b)) ranges

let max_pressure p ~order =
  let ranges = live_ranges p ~order in
  let n = Array.length order in
  let delta = Array.make (n + 2) 0 in
  Array.iter
    (fun (start, stop) ->
      if start >= 0 then begin
        delta.(start) <- delta.(start) + 1;
        delta.(stop + 1) <- delta.(stop + 1) - 1
      end)
    ranges;
  let cur = ref 0 and best = ref 0 in
  Array.iter
    (fun d ->
      cur := !cur + d;
      best := max !best !cur)
    delta;
  !best

type allocation = { k : int; assignment : int array; spills : int; max_pressure : int }

let linear_scan (p : Program.t) ~order ~k =
  if k <= 0 then invalid_arg "Regalloc.linear_scan: k must be positive";
  let ranges = live_ranges p ~order in
  let intervals =
    ranges |> Array.to_list
    |> List.mapi (fun r (start, stop) -> (r, start, stop))
    |> List.filter (fun (_, start, _) -> start >= 0)
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
  in
  let assignment = Array.make (max 1 p.Program.n_regs) (-1) in
  let free = Queue.create () in
  for i = 0 to k - 1 do
    Queue.push i free
  done;
  (* active: (stop, vreg) sorted by stop ascending *)
  let active = ref [] in
  let spills = ref 0 in
  let expire start =
    let expired, still = List.partition (fun (stop, _) -> stop < start) !active in
    List.iter (fun (_, r) -> Queue.push assignment.(r) free) expired;
    active := still
  in
  List.iter
    (fun (r, start, stop) ->
      expire start;
      if Queue.is_empty free then begin
        (* Spill the interval that ends furthest away. *)
        match List.rev !active with
        | (last_stop, last_r) :: _ when last_stop > stop ->
          assignment.(r) <- assignment.(last_r);
          assignment.(last_r) <- -1;
          incr spills;
          active :=
            List.sort compare ((stop, r) :: List.filter (fun (_, x) -> x <> last_r) !active)
        | _ ->
          assignment.(r) <- -1;
          incr spills
      end
      else begin
        assignment.(r) <- Queue.pop free;
        active := List.sort compare ((stop, r) :: !active)
      end)
    intervals;
  { k; assignment; spills = !spills; max_pressure = max_pressure p ~order }
