(** Spill-code materialization for a finite register file.

    The paper's compiler worried about "the limited registers" (hence
    delayed loads); this module makes the cost concrete.  Given a
    program and [k] physical registers, {!Regalloc.linear_scan} (over
    the original instruction order — allocation before scheduling, the
    classic phase order) decides which virtual registers spill, and the
    body is rewritten:

    - after a spilled register's definition, a store to a private spill
      slot ([spill_r<n>[4*I]] — indexed by the iteration, so the slot
      is processor-private exactly like a stack slot);
    - before every use, a reload into a fresh virtual register.

    The rewritten program still satisfies single assignment and all
    {!Isched_ir.Program.validate} invariants; the spill loads and stores
    compete for the load/store unit like any other memory operation, so
    scheduling the result measures how register pressure interacts with
    the synchronization spans (the "register study" bench table).

    Virtual registers are kept virtual — the rewrite models spill
    traffic, not physical-register anti-dependences. *)

module Program := Isched_ir.Program

type result = {
  prog : Program.t;  (** the rewritten program ([== input] if no spills) *)
  spilled : int list;  (** virtual registers that went to memory *)
  n_spill_ops : int;  (** stores + reloads inserted *)
}

(** [insert p ~k] — spill-rewrite for [k] registers.
    Raises [Invalid_argument] if [k <= 0]. *)
val insert : Program.t -> k:int -> result
