(** DLX-flavoured assembly emission with physical registers.

    The schedulers work on virtual registers (Fig. 2's [t1..t21]); this
    backend maps them onto a finite register file with
    {!Regalloc.linear_scan} over the emission order and renders readable
    assembly: [add]/[addi], [addf], [mult], [slli], [lw]/[sw] with the
    array symbol as the base, [send]/[wait] for the synchronization
    operations, and the reserved name [rI] for the loop index.  Immediate
    operands may appear in either position (a deliberate readability
    deviation from strict DLX, flagged in the header comment).

    Emission fails — rather than silently produce wrong code — when the
    register file is too small: callers should first materialize spill
    code with {!Spill.insert} and retry. *)

module Program := Isched_ir.Program

(** [emit ~k p] — the body in original program order, one instruction
    per line, numbered.  [Error msg] when [k] registers do not suffice
    without spilling. *)
val emit : k:int -> Program.t -> (string, string) result

(** [emit_schedule ~k s] — the scheduled code as one VLIW-style bundle
    per row ([;;]-terminated), allocated over the schedule order. *)
val emit_schedule : k:int -> Isched_core.Schedule.t -> (string, string) result
