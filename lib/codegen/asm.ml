module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand

(* Physical names: r1..rk for allocated temporaries, rI for the loop
   index.  r0 is conventionally zero and never allocated. *)
let reg_name assignment r =
  let a = assignment.(r) in
  assert (a >= 0);
  Printf.sprintf "r%d" (a + 1)

let operand assignment = function
  | Operand.Reg r -> reg_name assignment r
  | Operand.Imm i -> Printf.sprintf "#%d" i
  | Operand.Fimm f -> Printf.sprintf "#%g" f
  | Operand.Ivar -> "rI"

let mnemonic (op : Instr.binop) ~imm =
  let base =
    match op with
    | Instr.Add -> "add"
    | Instr.Sub -> "sub"
    | Instr.Mul -> "mult"
    | Instr.Div -> "div"
    | Instr.Shl -> "sll"
    | Instr.Shr -> "sra"
    | Instr.FAdd -> "addf"
    | Instr.FSub -> "subf"
    | Instr.FMul -> "multf"
    | Instr.FDiv -> "divf"
    | Instr.CmpLt -> "slt"
    | Instr.CmpLe -> "sle"
    | Instr.CmpGt -> "sgt"
    | Instr.CmpGe -> "sge"
    | Instr.CmpEq -> "seq"
    | Instr.CmpNe -> "sne"
  in
  if imm then base ^ "i" else base

let is_imm = function Operand.Imm _ | Operand.Fimm _ -> true | _ -> false

let render_instr (p : Program.t) assignment i =
  let op = operand assignment in
  match p.Program.body.(i) with
  | Instr.Bin { op = bop; dst; a; b } ->
    Printf.sprintf "%-6s %s, %s, %s"
      (mnemonic bop ~imm:(is_imm a || is_imm b))
      (reg_name assignment dst) (op a) (op b)
  | Instr.Select { dst; cond; if_true; if_false } ->
    Printf.sprintf "%-6s %s, %s, %s, %s" "cmov" (reg_name assignment dst) (op cond) (op if_true)
      (op if_false)
  | Instr.Load { dst; base; addr } ->
    Printf.sprintf "%-6s %s, %s(%s)" "lw" (reg_name assignment dst) base (op addr)
  | Instr.Store { base; addr; src } ->
    Printf.sprintf "%-6s %s, %s(%s)" "sw" (op src) base (op addr)
  | Instr.Load_scalar { dst; name } ->
    Printf.sprintf "%-6s %s, %s" "lw" (reg_name assignment dst) name
  | Instr.Store_scalar { name; src } -> Printf.sprintf "%-6s %s, %s" "sw" (op src) name
  | Instr.Send { signal } -> Printf.sprintf "%-6s %s" "send" (Program.signal_label p signal)
  | Instr.Wait { wait } -> Printf.sprintf "%-6s %s" "wait" (Program.wait_label p wait)

let allocate (p : Program.t) ~order ~k =
  let alloc = Regalloc.linear_scan p ~order ~k in
  if alloc.Regalloc.spills > 0 then
    Error
      (Printf.sprintf
         "%d registers are not enough for %s (%d virtual registers spill; run Spill.insert first)"
         k p.Program.name alloc.Regalloc.spills)
  else Ok alloc.Regalloc.assignment

let header (p : Program.t) ~k what =
  Printf.sprintf
    "; %s of loop %s: %d iterations, %d instructions, %d physical registers (+rI)\n\
     ; DLX-flavoured: immediates (#v) may appear in either operand position\n"
    what p.Program.name p.Program.n_iters (Array.length p.Program.body) k

let emit ~k (p : Program.t) =
  let order = Regalloc.original_order p in
  match allocate p ~order ~k with
  | Error _ as e -> e
  | Ok assignment ->
    let buf = Buffer.create 2048 in
    Buffer.add_string buf (header p ~k "assembly");
    Array.iteri
      (fun i _ -> Buffer.add_string buf (Printf.sprintf "%4d: %s\n" (i + 1) (render_instr p assignment i)))
      p.Program.body;
    Ok (Buffer.contents buf)

let emit_schedule ~k (s : Isched_core.Schedule.t) =
  let p = s.Isched_core.Schedule.prog in
  let order = Array.concat (Array.to_list s.Isched_core.Schedule.rows) in
  match allocate p ~order ~k with
  | Error _ as e -> e
  | Ok assignment ->
    let buf = Buffer.create 2048 in
    Buffer.add_string buf (header p ~k "scheduled assembly");
    Array.iteri
      (fun row nodes ->
        let cells = Array.to_list (Array.map (render_instr p assignment) nodes) in
        Buffer.add_string buf
          (Printf.sprintf "%4d: %s ;;\n" (row + 1)
             (if cells = [] then "nop" else String.concat " ; " cells)))
      s.Isched_core.Schedule.rows;
    Ok (Buffer.contents buf)
