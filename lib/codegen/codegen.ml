module Ast = Isched_frontend.Ast
module Sema = Isched_frontend.Sema
module Affine = Isched_deps.Affine
module Access = Isched_deps.Access
module Plan = Isched_sync.Plan
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand
module Program = Isched_ir.Program

(* Value class of an operand: index arithmetic stays on the integer
   units; anything derived from memory is a "value" and uses the
   floating-point units, as real arrays are REAL in the benchmarks. *)
type cls = Cint | Cval

(* CSE keys are structural values, not formatted strings: key
   construction sits on the per-instruction emission path, and
   [Printf.sprintf] there dominated compile time at corpus scale. *)
type cse_key =
  | Kbin of Instr.binop * Operand.t * Operand.t
  | Kload of string * Operand.t  (* base array, byte address *)
  | Kload_scalar of string

type state = {
  loop : Ast.loop;
  plan : Plan.t;
  code : Instr.t Isched_util.Vec.t;
  mem : Program.mem_ref option Isched_util.Vec.t;  (* parallel to code *)
  stmts : int Isched_util.Vec.t;  (* parallel to code: statement id *)
  mutable next_reg : int;
  reg_cls : cls Isched_util.Vec.t;  (* per virtual register *)
  cse : (cse_key, Operand.t) Hashtbl.t;
  (* CSE key -> instruction index that produced the cached value *)
  access_instr_of_key : (cse_key, int) Hashtbl.t;
  (* access (stmt, idx) -> instruction index of the memory op *)
  access_instr : (int * int, int) Hashtbl.t;
  (* arrays that are stored to somewhere in the body / scalars written *)
  stored_arrays : (string, unit) Hashtbl.t;
  written_scalars : (string, unit) Hashtbl.t;
  (* signals to send right after a given access *)
  sends_after : (int * int, int list) Hashtbl.t;
  (* emission positions of the sync instructions *)
  send_instr_tbl : (int, int) Hashtbl.t;  (* signal id -> body index *)
  wait_instr_tbl : (int, int) Hashtbl.t;  (* wait id -> body index *)
  mutable cur_stmt : int;
  mutable acc_cursor : int;  (* next access index within the statement *)
}

let fresh st cls =
  let r = st.next_reg in
  st.next_reg <- r + 1;
  Isched_util.Vec.push st.reg_cls cls;
  r

let cls_of_operand st = function
  | Operand.Reg r -> Isched_util.Vec.get st.reg_cls r
  | Operand.Imm _ | Operand.Ivar -> Cint
  | Operand.Fimm _ -> Cval

let emit ?mem st instr =
  let idx = Isched_util.Vec.length st.code in
  Isched_util.Vec.push st.code instr;
  Isched_util.Vec.push st.mem mem;
  Isched_util.Vec.push st.stmts st.cur_stmt;
  (* Sends scheduled to follow this instruction's access are emitted by
     [take_access]. *)
  idx

let bin_key op a b =
  (* Commutative operands are canonicalized under a fixed total order so
     both argument orders share one key; any total order yields the same
     equivalence classes, so swapping the string order for the structural
     one changes no CSE decision. *)
  let commutative = match op with Instr.Add | Instr.Mul -> true | _ -> false in
  if commutative && Stdlib.compare b a < 0 then Kbin (op, b, a) else Kbin (op, a, b)

(* Emit (or reuse) a pure integer-class binary operation. *)
let emit_int_bin st op a b =
  let key = bin_key op a b in
  match Hashtbl.find_opt st.cse key with
  | Some o -> o
  | None ->
    let dst = fresh st Cint in
    ignore (emit st (Instr.Bin { op; dst; a; b }));
    let o = Operand.Reg dst in
    Hashtbl.add st.cse key o;
    o

(* Advance the access cursor: the current memory operation realizes the
   access (st.cur_stmt, st.acc_cursor).  Record the mapping and emit any
   Send_Signal attached to this access.  Internal memory operations that
   do not correspond to a source-level access (the old-value load of an
   if-converted store) pass [track:false] and leave the cursor alone. *)
let take_access st instr_idx =
  let key = (st.cur_stmt, st.acc_cursor) in
  st.acc_cursor <- st.acc_cursor + 1;
  Hashtbl.replace st.access_instr key instr_idx;
  match Hashtbl.find_opt st.sends_after key with
  | None -> ()
  | Some signals ->
    List.iter
      (fun s ->
        let i = emit st (Instr.Send { signal = s }) in
        Hashtbl.replace st.send_instr_tbl s i)
      (List.sort compare signals)

(* --- subscripts and addresses --- *)

let rec compile_index st (e : Ast.expr) : Operand.t =
  match Affine.of_expr e with
  | Some { Affine.coef = 0; off } -> Operand.Imm off
  | Some { Affine.coef = 1; off = 0 } -> Operand.Ivar
  | Some { Affine.coef = 1; off } -> emit_int_bin st Instr.Add Operand.Ivar (Operand.Imm off)
  | Some { Affine.coef; off } ->
    let scaled = emit_int_bin st Instr.Mul (Operand.Imm coef) Operand.Ivar in
    if off = 0 then scaled else emit_int_bin st Instr.Add scaled (Operand.Imm off)
  | None ->
    (* Non-affine: compile as a general expression in index context. *)
    compile_expr st ~index:true e

(* Byte address of element [idx]: idx << 2 (the paper's 4*x). *)
and address_of st idx =
  match idx with
  | Operand.Imm i -> Operand.Imm (i * 4)
  | _ -> emit_int_bin st Instr.Shl idx (Operand.Imm 2)

and compile_load st base sub =
  let idx = compile_index st sub in
  let addr = address_of st idx in
  let affine =
    match Affine.of_expr sub with Some a -> Some (a.Affine.coef, a.Affine.off) | None -> None
  in
  let mem = { Program.base; affine } in
  (* Loads from arrays the body never stores to are safe to reuse. *)
  let cacheable = not (Hashtbl.mem st.stored_arrays base) in
  let key = Kload (base, addr) in
  match if cacheable then Hashtbl.find_opt st.cse key else None with
  | Some (Operand.Reg r) ->
    (match Hashtbl.find_opt st.access_instr_of_key key with
    | Some i -> take_access st i
    | None -> assert false);
    Operand.Reg r
  | Some _ | None ->
    let dst = fresh st Cval in
    let i = emit ~mem st (Instr.Load { dst; base; addr }) in
    take_access st i;
    if cacheable then begin
      Hashtbl.add st.cse key (Operand.Reg dst);
      Hashtbl.add st.access_instr_of_key key i
    end;
    Operand.Reg dst

and compile_scalar_load st name =
  let cacheable = not (Hashtbl.mem st.written_scalars name) in
  let key = Kload_scalar name in
  match if cacheable then Hashtbl.find_opt st.cse key else None with
  | Some (Operand.Reg r) ->
    (match Hashtbl.find_opt st.access_instr_of_key key with
    | Some i -> take_access st i
    | None -> assert false);
    Operand.Reg r
  | Some _ | None ->
    let dst = fresh st Cval in
    let i = emit st (Instr.Load_scalar { dst; name }) in
    take_access st i;
    if cacheable then begin
      Hashtbl.add st.cse key (Operand.Reg dst);
      Hashtbl.add st.access_instr_of_key key i
    end;
    Operand.Reg dst

(* --- general expressions --- *)

and compile_expr st ~index (e : Ast.expr) : Operand.t =
  match e with
  | Ast.Num x ->
    if Float.is_integer x && Float.abs x < 1e9 then Operand.Imm (int_of_float x)
    else Operand.Fimm x
  | Ast.Ivar -> Operand.Ivar
  | Ast.Scalar name -> compile_scalar_load st name
  | Ast.Aref (base, sub) -> compile_load st base sub
  | Ast.Neg a ->
    let oa = compile_expr st ~index a in
    let int_ctx = index || cls_of_operand st oa = Cint in
    let op = if int_ctx then Instr.Sub else Instr.FSub in
    if int_ctx then emit_int_bin st op (Operand.Imm 0) oa
    else begin
      let dst = fresh st Cval in
      ignore (emit st (Instr.Bin { op; dst; a = Operand.Imm 0; b = oa }));
      Operand.Reg dst
    end
  | Ast.Bin (op, a, b) ->
    let oa = compile_expr st ~index a in
    let ob = compile_expr st ~index b in
    let int_ctx =
      index || (cls_of_operand st oa = Cint && cls_of_operand st ob = Cint)
    in
    let iop =
      match (op, int_ctx) with
      | Ast.Add, true -> Instr.Add
      | Ast.Sub, true -> Instr.Sub
      | Ast.Mul, true -> Instr.Mul
      | Ast.Div, true -> Instr.Div
      | Ast.Add, false -> Instr.FAdd
      | Ast.Sub, false -> Instr.FSub
      | Ast.Mul, false -> Instr.FMul
      | Ast.Div, false -> Instr.FDiv
    in
    if int_ctx then emit_int_bin st iop oa ob
    else begin
      let dst = fresh st Cval in
      ignore (emit st (Instr.Bin { op = iop; dst; a = oa; b = ob }));
      Operand.Reg dst
    end

and compile_cond st (c : Ast.cond) : Operand.t =
  let oa = compile_expr st ~index:false c.lhs in
  let ob = compile_expr st ~index:false c.rhs in
  let op =
    match c.rel with
    | Ast.Lt -> Instr.CmpLt
    | Ast.Le -> Instr.CmpLe
    | Ast.Gt -> Instr.CmpGt
    | Ast.Ge -> Instr.CmpGe
    | Ast.Eq -> Instr.CmpEq
    | Ast.Ne -> Instr.CmpNe
  in
  let dst = fresh st Cint in
  ignore (emit st (Instr.Bin { op; dst; a = oa; b = ob }));
  Operand.Reg dst

(* --- statements --- *)

let compile_stmt st i (s : Ast.stmt) =
  st.cur_stmt <- i;
  st.acc_cursor <- 0;
  (* Wait_Signals of all dependences sinking at this statement, in wait
     id order, before anything else the statement does. *)
  Array.iter
    (fun (p : Plan.pair) ->
      if p.dep.Isched_deps.Dep.snk.Access.stmt = i then begin
        let idx = emit st (Instr.Wait { wait = p.wait }) in
        Hashtbl.replace st.wait_instr_tbl p.wait idx
      end)
    st.plan.Plan.pairs;
  let cond_op = Option.map (fun c -> compile_cond st c) s.guard in
  match s.lhs with
  | Ast.Larr (base, sub) ->
    let idx = compile_index st sub in
    let addr = address_of st idx in
    let affine =
      match Affine.of_expr sub with
      | Some a -> Some (a.Affine.coef, a.Affine.off)
      | None -> None
    in
    let mem = { Program.base; affine } in
    let rhs_op = compile_expr st ~index:false s.rhs in
    let value =
      match cond_op with
      | None -> rhs_op
      | Some cond ->
        (* If-conversion: keep the old value when the guard is false.
           The old-value load is internal: it does not correspond to a
           source-level access and must not advance the access cursor. *)
        let old = fresh st Cval in
        ignore (emit ~mem st (Instr.Load { dst = old; base; addr }));
        let dst = fresh st Cval in
        ignore
          (emit st (Instr.Select { dst; cond; if_true = rhs_op; if_false = Operand.Reg old }));
        Operand.Reg dst
    in
    let store_idx = emit ~mem st (Instr.Store { base; addr; src = value }) in
    take_access st store_idx
  | Ast.Lscalar name ->
    let rhs_op = compile_expr st ~index:false s.rhs in
    let value =
      match cond_op with
      | None -> rhs_op
      | Some cond ->
        let old = fresh st Cval in
        ignore (emit st (Instr.Load_scalar { dst = old; name }));
        let dst = fresh st Cval in
        ignore
          (emit st (Instr.Select { dst; cond; if_true = rhs_op; if_false = Operand.Reg old }));
        Operand.Reg dst
    in
    let store_idx = emit st (Instr.Store_scalar { name; src = value }) in
    take_access st store_idx

(* --- driver --- *)

let dep_kind_of = function
  | Isched_deps.Dep.Flow -> Program.Flow
  | Isched_deps.Dep.Anti -> Program.Anti
  | Isched_deps.Dep.Output -> Program.Output

let lexical_of = function
  | Isched_deps.Dep.LFD -> Program.LFD
  | Isched_deps.Dep.LBD -> Program.LBD

let run ?n_iters (l : Ast.loop) (plan : Plan.t) =
  Sema.check_exn l;
  let st =
    {
      loop = l;
      plan;
      code = Isched_util.Vec.create ();
      mem = Isched_util.Vec.create ();
      stmts = Isched_util.Vec.create ();
      next_reg = 0;
      reg_cls = Isched_util.Vec.create ();
      cse = Hashtbl.create 64;
      access_instr_of_key = Hashtbl.create 64;
      access_instr = Hashtbl.create 64;
      stored_arrays = Hashtbl.create 8;
      written_scalars = Hashtbl.create 8;
      sends_after = Hashtbl.create 8;
      send_instr_tbl = Hashtbl.create 8;
      wait_instr_tbl = Hashtbl.create 8;
      cur_stmt = 0;
      acc_cursor = 0;
    }
  in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.lhs with
      | Ast.Larr (a, _) -> Hashtbl.replace st.stored_arrays a ()
      | Ast.Lscalar n -> Hashtbl.replace st.written_scalars n ())
    l.body;
  Array.iter
    (fun (sd : Plan.signal_decl) ->
      let key = (sd.src.Access.stmt, sd.src.Access.idx) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt st.sends_after key) in
      Hashtbl.replace st.sends_after key (sd.signal :: prev))
    plan.Plan.signals;
  List.iteri (fun i s -> compile_stmt st i s) l.body;
  let find_access what (a : Access.t) =
    match Hashtbl.find_opt st.access_instr (a.stmt, a.idx) with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Codegen: %s access S%d.%d of loop %s has no instruction" what
           (a.stmt + 1) a.idx l.name)
  in
  let signals =
    Array.map
      (fun (sd : Plan.signal_decl) ->
        {
          Program.signal = sd.signal;
          src_stmt = sd.src.Access.stmt;
          src_instr = find_access "source" sd.src;
          send_instr =
            (match Hashtbl.find_opt st.send_instr_tbl sd.signal with
            | Some i -> i
            | None ->
              invalid_arg
                (Printf.sprintf "Codegen: signal %d of loop %s was never sent" sd.signal l.name));
          label = sd.label;
        })
      plan.Plan.signals
  in
  let waits =
    Array.map
      (fun (p : Plan.pair) ->
        let dep = p.dep in
        {
          Program.wait = p.wait;
          signal = p.signal;
          distance = p.distance;
          snk_stmt = dep.Isched_deps.Dep.snk.Access.stmt;
          snk_instr = find_access "sink" dep.Isched_deps.Dep.snk;
          wait_instr =
            (match Hashtbl.find_opt st.wait_instr_tbl p.wait with
            | Some i -> i
            | None ->
              invalid_arg
                (Printf.sprintf "Codegen: wait %d of loop %s was never emitted" p.wait l.name));
          kind = dep_kind_of dep.Isched_deps.Dep.kind;
          lexical = lexical_of dep.Isched_deps.Dep.lexical;
          array = dep.Isched_deps.Dep.src.Access.target;
        })
      plan.Plan.pairs
  in
  let program =
    {
      Program.name = l.name;
      body = Isched_util.Vec.to_array st.code;
      signals;
      waits;
      mem = Isched_util.Vec.to_array st.mem;
      stmt_of = Isched_util.Vec.to_array st.stmts;
      n_regs = st.next_reg;
      lo = l.lo;
      n_iters = (match n_iters with Some n -> n | None -> Ast.iterations l);
      source_lines = Ast.source_lines l;
    }
  in
  Program.validate program;
  program

let compile ?(eliminate = false) ?(migrate = false) ?carried ?n_iters l =
  (* [carried], when given, must be [Dep.carried_deps l]: callers that
     already decided DOALL vs DOACROSS pass their analysis along instead
     of re-running it.  Migration reorders the statements, which
     renumbers the accesses the deps refer to, so a provided list is
     only usable on the unmigrated loop. *)
  let l, carried =
    if migrate then (Isched_sync.Migrate.reorder l, None) else (l, carried)
  in
  let plan =
    match carried with Some deps -> Plan.of_deps l deps | None -> Plan.build l
  in
  if not eliminate then run ?n_iters l plan
  else begin
    (* Two passes: compile fully synchronized, find the waits whose
       coverage is provable on the data-flow graph, recompile without
       them.  The wait ids of the first program index [plan.pairs]. *)
    let full = run ?n_iters l plan in
    let g = Isched_dfg.Dfg.build full in
    let redundant = Isched_dfg.Reduce.redundant_waits g in
    if redundant = [] then full
    else begin
      let kept =
        Array.to_list plan.Plan.pairs
        |> List.filter (fun (p : Plan.pair) -> not (List.mem p.Plan.wait redundant))
        |> List.map (fun (p : Plan.pair) -> p.Plan.dep)
      in
      run ?n_iters l (Plan.of_deps l kept)
    end
  end

(* Observability shadows: the exported entry points are the traced ones. *)
let run ?n_iters l plan = Isched_obs.Span.with_ ~name:"codegen.run" (fun () -> run ?n_iters l plan)

let compile ?eliminate ?migrate ?carried ?n_iters l =
  Isched_obs.Span.with_ ~name:"codegen.compile" (fun () ->
      compile ?eliminate ?migrate ?carried ?n_iters l)
