(** Register allocation analysis (linear scan) for the virtual
    registers of a compiled loop body.

    The code generator emits an unbounded set of single-assignment
    temporaries (like Fig. 2's [t1..t21]); real DLX hardware has a fixed
    register file, which is why the paper's compiler uses delayed loads
    "to effectively use the limited registers".  This module measures
    the consequences: live ranges, maximum register pressure, and a
    classic linear-scan allocation with furthest-end spilling — for any
    linear instruction order, so the pressure of the original code, the
    list schedule and the sync-aware schedule can be compared (the
    benchmark harness reports this as an ablation). *)

module Program := Isched_ir.Program

(** [order] is a permutation of body indices giving the linear
    execution order to analyze; {!original_order} is the identity.
    For a schedule, flatten its rows. *)

val original_order : Program.t -> int array

(** [live_ranges p ~order] — for every virtual register, the half-open
    position interval [(start, stop)] in [order] positions: from its
    definition to its last use ([stop = start] when never used). *)
val live_ranges : Program.t -> order:int array -> (int * int) array

(** [max_pressure p ~order] — the maximum number of simultaneously live
    registers. *)
val max_pressure : Program.t -> order:int array -> int

type allocation = {
  k : int;  (** physical registers available *)
  assignment : int array;  (** virtual -> physical, [-1] if spilled *)
  spills : int;  (** number of spilled virtual registers *)
  max_pressure : int;
}

(** [linear_scan p ~order ~k] — Poletto-Sarkar linear scan with
    furthest-endpoint spilling.  Raises [Invalid_argument] when
    [k <= 0]. *)
val linear_scan : Program.t -> order:int array -> k:int -> allocation
