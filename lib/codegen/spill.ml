module Program = Isched_ir.Program
module Instr = Isched_ir.Instr
module Operand = Isched_ir.Operand
module Vec = Isched_util.Vec

type result = { prog : Program.t; spilled : int list; n_spill_ops : int }

let slot_base r = Printf.sprintf "spill_r%d" r

let insert (p : Program.t) ~k =
  let order = Regalloc.original_order p in
  let alloc = Regalloc.linear_scan p ~order ~k in
  let spilled =
    Array.to_list (Array.mapi (fun r a -> (r, a)) alloc.Regalloc.assignment)
    |> List.filter_map (fun (r, a) -> if a < 0 then Some r else None)
  in
  if spilled = [] then { prog = p; spilled = []; n_spill_ops = 0 }
  else begin
    let is_spilled = Array.make p.Program.n_regs false in
    List.iter (fun r -> is_spilled.(r) <- true) spilled;
    let next_reg = ref p.Program.n_regs in
    let fresh () =
      let r = !next_reg in
      incr next_reg;
      r
    in
    let body = Vec.create () in
    let mem = Vec.create () in
    let stmts = Vec.create () in
    let new_index = Array.make (Array.length p.Program.body) (-1) in
    let n_spill_ops = ref 0 in
    (* The slot address is the iteration's byte index; one shared
       computation, defined up front. *)
    let addr_reg = fresh () in
    let emit stmt ?m ins =
      Vec.push body ins;
      Vec.push mem m;
      Vec.push stmts stmt
    in
    emit 0 (Instr.Bin { op = Instr.Shl; dst = addr_reg; a = Operand.Ivar; b = Operand.Imm 2 });
    let slot_ref r = { Program.base = slot_base r; affine = Some (1, 0) } in
    Array.iteri
      (fun i ins ->
        let stmt = p.Program.stmt_of.(i) in
        (* Reload spilled operands into fresh registers. *)
        let reload_cache = Hashtbl.create 4 in
        let reload r =
          match Hashtbl.find_opt reload_cache r with
          | Some r' -> r'
          | None ->
            let r' = fresh () in
            incr n_spill_ops;
            emit stmt ~m:(slot_ref r)
              (Instr.Load { dst = r'; base = slot_base r; addr = Operand.Reg addr_reg });
            Hashtbl.add reload_cache r r';
            r'
        in
        let op o =
          match o with
          | Operand.Reg r when is_spilled.(r) -> Operand.Reg (reload r)
          | _ -> o
        in
        let ins' =
          match ins with
          | Instr.Bin b -> Instr.Bin { b with a = op b.a; b = op b.b }
          | Instr.Select s ->
            Instr.Select { s with cond = op s.cond; if_true = op s.if_true; if_false = op s.if_false }
          | Instr.Load l -> Instr.Load { l with addr = op l.addr }
          | Instr.Store s -> Instr.Store { s with addr = op s.addr; src = op s.src }
          | Instr.Load_scalar _ | Instr.Store_scalar _ | Instr.Send _ | Instr.Wait _ -> (
            match ins with
            | Instr.Store_scalar s -> Instr.Store_scalar { s with src = op s.src }
            | other -> other)
        in
        new_index.(i) <- Vec.length body;
        emit stmt ?m:p.Program.mem.(i) ins';
        (* Store a spilled definition right after it. *)
        match Instr.def ins' with
        | Some d when is_spilled.(d) ->
          incr n_spill_ops;
          emit stmt ~m:(slot_ref d)
            (Instr.Store { base = slot_base d; addr = Operand.Reg addr_reg; src = Operand.Reg d })
        | _ -> ())
      p.Program.body;
    let remap i = new_index.(i) in
    let signals =
      Array.map
        (fun (s : Program.signal_info) ->
          { s with Program.src_instr = remap s.src_instr; send_instr = remap s.send_instr })
        p.Program.signals
    in
    let waits =
      Array.map
        (fun (w : Program.wait_info) ->
          { w with Program.snk_instr = remap w.snk_instr; wait_instr = remap w.wait_instr })
        p.Program.waits
    in
    let prog =
      {
        p with
        Program.body = Vec.to_array body;
        mem = Vec.to_array mem;
        stmt_of = Vec.to_array stmts;
        signals;
        waits;
        n_regs = !next_reg;
        name = Printf.sprintf "%s.k%d" p.Program.name k;
      }
    in
    Program.validate prog;
    { prog; spilled; n_spill_ops = !n_spill_ops }
  end
